"""Serving layer: paged compressed-KV pool + continuous-batching engine.

Turns the codec layers below into a multi-tenant serving system: Ecco's
capacity win becomes admitted-requests-per-byte-budget, and its
bandwidth win becomes modeled KV-read traffic per decode step.  On top
of the single engine sit trace-driven workloads (``repro.serve.workload``
— seeded Poisson/bursty/diurnal arrivals over chat/RAG/agent scenario
mixes, replayed on a virtual clock), a multi-replica router
(``repro.serve.cluster`` — prefix-affinity + least-active-bytes routing
with aggregated metrics), multi-turn sessions (``repro.serve.session``
— turn N+1 submits the whole conversation and the pool's prefix cache
serves the shared history without re-encoding a token), and the
event-driven front-end (``repro.serve.frontend`` — async token
streaming to concurrent clients, per-tenant rate limits and weighted
fairness, SLO-aware admission via pluggable scheduling policies from
``repro.serve.scheduler``, and client retry/timeout modeling from
``repro.serve.workload``).
"""

from .cluster import ClusterRouter
from .engine import ServingEngine
from .frontend import (
    AsyncServingEngine,
    RequestShedError,
    RequestTimeoutError,
    StreamHandle,
)
from .metrics import (
    EngineMetrics,
    decode_step_sectors,
    latency_percentiles,
    summarize_turns,
)
from .pool import BudgetExceededError, KVPage, PagedKVPool, chain_hash
from .request import Request, RequestMetrics, RequestState
from .scheduler import (
    ContinuousBatchingScheduler,
    DeadlinePolicy,
    FCFSPolicy,
    SchedulerPolicy,
    make_policy,
)
from .session import Session, replay_sessions
from .slo import SLO, next_deadline_s, slack_s, slo_attainment
from .storage import EccoKVBackend, Fp16KVBackend, RequestKV
from .trie import PrefixMatch, PrefixTrie, common_prefix_len
from .workload import (
    RetryPolicy,
    SessionTrace,
    SessionTurn,
    SessionWorkloadConfig,
    StepCostModel,
    TraceRequest,
    VirtualClock,
    WorkloadConfig,
    bursty_arrivals,
    diurnal_arrivals,
    generate_sessions,
    generate_trace,
    poisson_arrivals,
    replay_open_loop,
    replay_trace,
)

__all__ = [
    "AsyncServingEngine",
    "BudgetExceededError",
    "ClusterRouter",
    "ContinuousBatchingScheduler",
    "DeadlinePolicy",
    "EccoKVBackend",
    "EngineMetrics",
    "FCFSPolicy",
    "Fp16KVBackend",
    "KVPage",
    "PagedKVPool",
    "PrefixMatch",
    "PrefixTrie",
    "Request",
    "RequestKV",
    "RequestMetrics",
    "RequestShedError",
    "RequestState",
    "RequestTimeoutError",
    "RetryPolicy",
    "SLO",
    "SchedulerPolicy",
    "ServingEngine",
    "Session",
    "SessionTrace",
    "SessionTurn",
    "SessionWorkloadConfig",
    "StepCostModel",
    "StreamHandle",
    "TraceRequest",
    "VirtualClock",
    "WorkloadConfig",
    "bursty_arrivals",
    "chain_hash",
    "common_prefix_len",
    "decode_step_sectors",
    "diurnal_arrivals",
    "generate_sessions",
    "generate_trace",
    "latency_percentiles",
    "make_policy",
    "next_deadline_s",
    "poisson_arrivals",
    "replay_open_loop",
    "replay_sessions",
    "replay_trace",
    "slack_s",
    "slo_attainment",
    "summarize_turns",
]
