"""Serving layer: paged compressed-KV pool + continuous-batching engine.

Turns the codec layers below into a multi-tenant serving system: Ecco's
capacity win becomes admitted-requests-per-byte-budget, and its
bandwidth win becomes modeled KV-read traffic per decode step.  On top
of the single engine sit trace-driven workloads (``repro.serve.workload``
— seeded Poisson/bursty/diurnal arrivals over chat/RAG/agent scenario
mixes, replayed on a virtual clock) and a multi-replica front-end
(``repro.serve.cluster`` — prefix-affinity + least-active-bytes routing
with aggregated metrics).
"""

from .cluster import ClusterRouter
from .engine import ServingEngine
from .metrics import EngineMetrics, decode_step_sectors
from .pool import KVPage, PagedKVPool, chain_hash
from .request import Request, RequestMetrics, RequestState
from .scheduler import ContinuousBatchingScheduler
from .storage import EccoKVBackend, Fp16KVBackend, RequestKV
from .workload import (
    StepCostModel,
    TraceRequest,
    VirtualClock,
    WorkloadConfig,
    bursty_arrivals,
    diurnal_arrivals,
    generate_trace,
    poisson_arrivals,
    replay_trace,
)

__all__ = [
    "ClusterRouter",
    "ContinuousBatchingScheduler",
    "EccoKVBackend",
    "EngineMetrics",
    "Fp16KVBackend",
    "KVPage",
    "PagedKVPool",
    "Request",
    "RequestKV",
    "RequestMetrics",
    "RequestState",
    "ServingEngine",
    "StepCostModel",
    "TraceRequest",
    "VirtualClock",
    "WorkloadConfig",
    "bursty_arrivals",
    "chain_hash",
    "decode_step_sectors",
    "diurnal_arrivals",
    "generate_trace",
    "poisson_arrivals",
    "replay_trace",
]
