"""Serving layer: paged compressed-KV pool + continuous-batching engine.

Turns the codec layers below into a multi-tenant serving system: Ecco's
capacity win becomes admitted-requests-per-byte-budget, and its
bandwidth win becomes modeled KV-read traffic per decode step.
"""

from .engine import ServingEngine
from .metrics import EngineMetrics, decode_step_sectors
from .pool import KVPage, PagedKVPool, chain_hash
from .request import Request, RequestMetrics, RequestState
from .scheduler import ContinuousBatchingScheduler
from .storage import EccoKVBackend, Fp16KVBackend, RequestKV

__all__ = [
    "ContinuousBatchingScheduler",
    "EccoKVBackend",
    "EngineMetrics",
    "Fp16KVBackend",
    "KVPage",
    "PagedKVPool",
    "Request",
    "RequestKV",
    "RequestMetrics",
    "RequestState",
    "ServingEngine",
    "chain_hash",
    "decode_step_sectors",
]
