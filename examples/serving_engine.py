"""Multi-tenant serving over the paged compressed-KV pool.

Spins up the continuous-batching engine twice — once with the fp16 KV
pool, once with the Ecco-compressed pool — on the same byte budget and
the same trace of requests sharing a common system prompt, then compares
what the two pools could admit and move.  The compressed pool holds ~3x
the tokens per byte here (d_model=64 pads each 128-value group to half
occupancy; real head dims reach 4x), so the same budget serves more
tenants at once: fewer scheduler rounds, fuller batches, less KV read
traffic, and preemption victims that swap out in a quarter of the bytes.

Run with:  python examples/serving_engine.py
"""

import numpy as np

from repro.llm import calibrate, get_trained_model
from repro.serve import ServingEngine

BYTE_BUDGET = 24_000
NUM_REQUESTS = 8
SHARED_PREFIX = 8
UNIQUE_SUFFIX = 10
MAX_NEW_TOKENS = 12


def main() -> None:
    trained = get_trained_model("proxy-small")
    model, spec = trained.model, trained.spec
    calib_tokens = trained.generator.batches(8 * 33 + 33, 8, 32, seed=5)[0]
    calib = calibrate(model, calib_tokens)

    rng = np.random.default_rng(11)
    shared = rng.integers(0, spec.vocab_size, size=SHARED_PREFIX)
    prompts = [
        np.concatenate(
            [shared, rng.integers(0, spec.vocab_size, size=UNIQUE_SUFFIX)]
        )
        for _ in range(NUM_REQUESTS)
    ]

    print(f"model: {spec.name} ({spec.num_layers} layers, d={spec.d_model})")
    print(f"trace: {NUM_REQUESTS} requests, prompt {SHARED_PREFIX}+"
          f"{UNIQUE_SUFFIX} tokens ({SHARED_PREFIX} shared), "
          f"{MAX_NEW_TOKENS} new tokens each")
    print(f"KV pool budget: {BYTE_BUDGET / 1024:.0f} KiB\n")

    reports = {}
    for storage in ("fp16", "ecco"):
        engine = ServingEngine(
            model,
            calib,
            storage=storage,
            byte_budget=BYTE_BUDGET,
            page_tokens=8,
            max_batch_size=8,
            watermark=0.1,
        )
        for prompt in prompts:
            engine.submit(prompt, max_new_tokens=MAX_NEW_TOKENS)
        reports[storage] = engine.run()

    fp16, ecco = reports["fp16"], reports["ecco"]
    rows = [
        ("KV bytes/token", "{per_token_nbytes} B"),
        ("peak concurrent requests", "{peak_concurrency}"),
        ("decode steps to drain", "{decode_steps}"),
        ("mean batch occupancy", "{mean_batch_occupancy:.2f}"),
        ("preemptions", "{preemptions}"),
        ("TTFT mean (s)", "{ttft_s_mean:.4f}"),
        ("tokens generated", "{tokens_generated}"),
    ]
    print(f"{'':32s}{'fp16 pool':>14s}{'ecco pool':>14s}")
    for label, fmt in rows:
        print(f"{label:32s}{fmt.format(**fp16):>14s}{fmt.format(**ecco):>14s}")
    for label, key in [
        ("modeled KV read traffic", "modeled_kv_read_bytes"),
        ("swap-out traffic", None),
    ]:
        if key is None:
            a = fp16["pool"]["swap_out_bytes"]
            b = ecco["pool"]["swap_out_bytes"]
        else:
            a, b = fp16[key], ecco[key]
        print(f"{label:32s}{a / 1024:>11.1f} KiB{b / 1024:>11.1f} KiB")
    saved = ecco["pool"]["shared_bytes_saved"]
    print(f"\nprefix sharing saved {saved / 1024:.1f} KiB of encodes in the "
          f"ecco pool ({ecco['pool']['pages_shared']} page shares, "
          f"{ecco['pool']['prefix_cache_hits']} prefix-cache hits)")
    print(f"concurrency: {ecco['peak_concurrency']} vs "
          f"{fp16['peak_concurrency']} requests resident at the same budget "
          f"({ecco['peak_concurrency'] / fp16['peak_concurrency']:.1f}x)")


if __name__ == "__main__":
    main()
