"""Decode-speedup study: where Ecco's gains come from, per model and batch.

Uses the performance model (A100 parameters) to break one decode step into
projection / attention / overhead time per framework, the way Figure 11
attributes the speedup.

Run with:  python examples/llm_decode_speedup.py
"""

from repro.llm.config import get_spec
from repro.perf import decode_step_latency, memory_footprint

FRAMEWORKS = ["trt-fp16", "awq", "smoothquant", "olive", "quarot", "ecco"]


def show_breakdown(model_name: str, batch: int, seq: int) -> None:
    spec = get_spec(model_name)
    print(f"\n{model_name}  batch={batch} seq={seq}")
    print(f"{'framework':<12} {'total ms':>9} {'proj ms':>9} {'attn ms':>9} "
          f"{'overhead':>9} {'vs ecco':>8}")
    ecco = decode_step_latency(spec, "ecco", batch, seq)
    for name in FRAMEWORKS:
        latency = decode_step_latency(spec, name, batch, seq)
        print(
            f"{name:<12} {latency.total_s * 1e3:>9.2f} "
            f"{latency.projection_s * 1e3:>9.2f} {latency.attention_s * 1e3:>9.2f} "
            f"{latency.overhead_s * 1e3:>9.2f} {latency.total_s / ecco.total_s:>8.2f}"
        )


def show_memory(model_name: str, batch: int, seq: int) -> None:
    spec = get_spec(model_name)
    print(f"\nGPU memory, {model_name} batch={batch} seq={seq}")
    for name in FRAMEWORKS:
        fp = memory_footprint(spec, name, batch, seq)
        print(f"{name:<12} {fp.total_gb:>7.2f} GB  "
              f"(weights {fp.weights_bytes / 1e9:.2f}, kv {fp.kv_bytes / 1e9:.2f})")


def main() -> None:
    # Small-batch decode: weight bandwidth dominates.
    show_breakdown("llama-13b", batch=1, seq=2048)
    # Large batch + long context: the KV cache takes over.
    show_breakdown("llama-13b", batch=64, seq=2048)
    # A GQA model: smaller KV cache, smaller (but still real) gains.
    show_breakdown("mistral-7b", batch=32, seq=4096)
    # The memory story behind Figure 12.
    show_memory("llama-7b", batch=32, seq=2048)


if __name__ == "__main__":
    main()
