"""Online KV-cache compression during autoregressive decoding.

Simulates the decode loop the paper targets: every generated token's key and
value vectors are compressed on the fly (min/max pattern selection, the
hardware-friendly path), and the attention "reads back" the decompressed
cache.  Reports the capacity win and the reconstruction error the attention
kernel would see.

Run with:  python examples/kv_cache_streaming.py
"""

import numpy as np

from repro.core import KVCacheCodec, KVCacheStream, calibrate_kv_meta


def synthetic_kv(rng: np.random.Generator, steps: int, dim: int) -> np.ndarray:
    """Token key/value vectors with realistic per-channel scale disparity."""
    channel_scales = np.exp(rng.normal(0.0, 1.2, size=dim))
    return rng.standard_normal((steps, dim)) * channel_scales * 0.3


def main() -> None:
    rng = np.random.default_rng(7)
    head_dim = 128
    decode_steps = 96

    # Offline: fit the 16-pattern hardware library on calibration KV data.
    calibration = synthetic_kv(rng, 512, head_dim)
    meta = calibrate_kv_meta(calibration)
    codec = KVCacheCodec(meta)
    print(f"calibrated {meta.num_patterns} shared k-means patterns "
          f"({meta.config.pattern_select} selection)")

    # Online: compress each new token's K and V as they are produced.
    stream = KVCacheStream(key_codec=codec, value_codec=codec)
    keys = synthetic_kv(rng, decode_steps, head_dim)
    values = synthetic_kv(rng, decode_steps, head_dim)
    for step in range(decode_steps):
        stream.append(keys[step], values[step])

    print(f"decode steps:       {len(stream)}")
    print(f"cache size:         {stream.original_nbytes / 1024:.1f} KiB FP16 "
          f"-> {stream.compressed_nbytes / 1024:.1f} KiB compressed "
          f"({stream.original_nbytes / stream.compressed_nbytes:.2f}x)")

    # What attention reads back.
    restored_k = stream.read_keys().reshape(decode_steps, head_dim)
    restored_v = stream.read_values().reshape(decode_steps, head_dim)
    k_err = np.sqrt(np.mean((restored_k - keys) ** 2)) / np.std(keys)
    v_err = np.sqrt(np.mean((restored_v - values) ** 2)) / np.std(values)
    print(f"K relative RMS:     {k_err:.4f}")
    print(f"V relative RMS:     {v_err:.4f}")

    # Attention-score fidelity: dot products against a random query.
    query = rng.standard_normal(head_dim)
    exact_scores = keys @ query
    approx_scores = restored_k @ query
    corr = np.corrcoef(exact_scores, approx_scores)[0, 1]
    print(f"attention-score correlation: {corr:.5f}")


if __name__ == "__main__":
    main()
