"""Online KV-cache compression during autoregressive decoding.

Simulates the decode loop the paper targets: the prompt's key/value vectors
are compressed in one batched planning pass, every generated token's K and
V are compressed on the fly (min/max pattern selection, the
hardware-friendly path), and attention "reads back" the decompressed cache
each step.  The decoded-segment cache makes those reads amortized O(new
tokens): the counters printed below show each token is block-decoded
exactly once across the whole generation.  Reports the capacity win, the
decode-loop throughput, and the reconstruction error the attention kernel
would see.

Run with:  python examples/kv_cache_streaming.py
"""

import time

import numpy as np

from repro.core import KVCacheCodec, KVCacheStream, calibrate_kv_meta


def synthetic_kv(rng: np.random.Generator, steps: int, dim: int) -> np.ndarray:
    """Token key/value vectors with realistic per-channel scale disparity."""
    channel_scales = np.exp(rng.normal(0.0, 1.2, size=dim))
    return rng.standard_normal((steps, dim)) * channel_scales * 0.3


def main() -> None:
    rng = np.random.default_rng(7)
    head_dim = 128
    prefill_tokens = 32
    decode_steps = 96
    total = prefill_tokens + decode_steps

    # Offline: fit the 16-pattern hardware library on calibration KV data.
    calibration = synthetic_kv(rng, 512, head_dim)
    meta = calibrate_kv_meta(calibration)
    codec = KVCacheCodec(meta)
    print(f"calibrated {meta.num_patterns} shared k-means patterns "
          f"({meta.config.pattern_select} selection)")

    keys = synthetic_kv(rng, total, head_dim)
    values = synthetic_kv(rng, total, head_dim)
    stream = KVCacheStream(key_codec=codec, value_codec=codec)

    # Prefill: the whole prompt compresses in one batched planning pass.
    stream.append_tokens(keys[:prefill_tokens], values[:prefill_tokens])

    # Online decode loop: compress each new token's K and V, then read the
    # full cache back the way attention does every step.
    start = time.perf_counter()
    for step in range(prefill_tokens, total):
        stream.append(keys[step], values[step])
        restored_k = stream.read_keys()
        restored_v = stream.read_values()
    decode_s = time.perf_counter() - start

    print(f"cached tokens:      {len(stream)} "
          f"({prefill_tokens} prefill + {decode_steps} decoded)")
    print(f"cache size:         {stream.original_nbytes / 1024:.1f} KiB FP16 "
          f"-> {stream.compressed_nbytes / 1024:.1f} KiB compressed "
          f"({stream.compression_ratio:.2f}x)")
    print(f"decode loop:        {decode_steps / decode_s:,.0f} tokens/s "
          f"({decode_steps} steps, each reading the whole cache)")
    print(f"tokens block-decoded: {stream.decoded_tokens['keys']} keys / "
          f"{stream.decoded_tokens['values']} values "
          f"(= {len(stream)} each: every token decoded exactly once)")

    # What attention reads back: (num_tokens, head_dim), no reshape needed.
    k_err = np.sqrt(np.mean((restored_k - keys) ** 2)) / np.std(keys)
    v_err = np.sqrt(np.mean((restored_v - values) ** 2)) / np.std(values)
    print(f"K relative RMS:     {k_err:.4f}")
    print(f"V relative RMS:     {v_err:.4f}")

    # Attention-score fidelity: dot products against a random query.
    query = rng.standard_normal(head_dim)
    exact_scores = keys @ query
    approx_scores = restored_k @ query
    corr = np.corrcoef(exact_scores, approx_scores)[0, 1]
    print(f"attention-score correlation: {corr:.5f}")


if __name__ == "__main__":
    main()
