"""Accuracy sweep: quantize a trained proxy LM with every scheme.

Trains (or loads from the zoo cache) the small proxy language model, applies
each quantization scheme from the paper's Table 1, and reports held-out
perplexity plus zero-shot accuracy on the synthetic task suite.

Run with:  python examples/accuracy_sweep.py
(first run trains the proxy: ~30 s)
"""

import numpy as np

from repro.llm import (
    TASK_NAMES,
    apply_named_scheme,
    calibrate,
    get_trained_model,
    multiple_choice_accuracy,
    perplexity,
)

SCHEMES = [
    "fp16",
    "gptq-r-w4",
    "olive-w4",
    "awq-w4",
    "ecco-w4",
    "rtn-w4a8kv4",
    "awq-w4a8kv4",
    "quarot-w4a8kv4",
    "qoq-w4a8kv4",
    "ecco-w4a8kv4",
]


def main() -> None:
    trained = get_trained_model("proxy-small")
    print(f"proxy-small trained to loss {trained.final_loss:.3f} "
          f"({trained.spec.num_layers} layers, d={trained.spec.d_model})")

    held_out = trained.generator.token_stream(4096, seed=31337)
    calib_tokens = trained.generator.batches(16 * 65 + 65, 16, 64, seed=777)[0]
    calib = calibrate(trained.model, calib_tokens)
    items = trained.generator.task_items("agreement", 40, seed=5555)

    print(f"\n{'scheme':<16} {'perplexity':>11} {'delta':>8} {'task acc':>9}")
    base = None
    for scheme in SCHEMES:
        qm = apply_named_scheme(trained.model, scheme, calib)
        ppl = perplexity(trained.model, held_out, seq_len=64, batch=16, **qm.hooks())
        acc = multiple_choice_accuracy(trained.model, items, **qm.hooks())
        if base is None:
            base = ppl
        print(f"{scheme:<16} {ppl:>11.4f} {ppl - base:>+8.4f} {acc * 100:>8.1f}%")

    print(f"\ntasks available: {TASK_NAMES}")
    print("see benchmarks/bench_table1_perplexity.py for the full Table 1 run")


if __name__ == "__main__":
    main()
