"""Quickstart: compress a weight tensor with Ecco and inspect the result.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EccoTensorCodec, compress_weight


def main() -> None:
    # A synthetic LLM-like weight matrix: heavy-tailed values with
    # per-channel scale diversity (what real checkpoints look like).
    rng = np.random.default_rng(0)
    channel_scales = np.exp(rng.normal(0.0, 0.8, size=(1, 512)))
    weight = (rng.standard_t(df=5, size=(256, 512)) * channel_scales * 0.02).astype(
        np.float32
    )

    # Per-channel activation statistics make the compression activation-aware
    # (the mean squared input magnitude each weight column sees).
    act_weights = np.broadcast_to(
        np.abs(rng.standard_normal(512)) + 0.1, weight.shape
    )

    # One call: calibrate the shared k-means patterns + Huffman codebooks on
    # the tensor, then compress it into fixed 64-byte blocks.
    compressed, meta = compress_weight(weight, act_weights=act_weights)

    print(f"tensor:             {weight.shape}, {weight.size * 2 / 1024:.0f} KiB as FP16")
    print(f"compressed blocks:  {compressed.num_groups} x 64 B "
          f"= {compressed.nbytes / 1024:.0f} KiB")
    print(f"compression ratio:  {compressed.compression_ratio:.2f}x (target 4x)")
    print(f"tensor metadata:    {meta.metadata_bits() / 8 / 1024:.1f} KiB "
          f"(patterns + codebooks, shared by all blocks)")
    print(f"clipping ratio:     {compressed.clipping_ratio:.3%}")
    print(f"padding ratio:      {compressed.padding_ratio:.3%}")

    # Decompress and measure reconstruction quality.
    codec = EccoTensorCodec(meta)
    restored = codec.decode(compressed)
    err = restored - weight
    rms = np.sqrt(np.mean(err**2)) / np.std(weight)
    print(f"relative RMS error: {rms:.4f}")

    # The vectorized fast path produces identical values and is what the
    # accuracy experiments use.
    fast = codec.fast_roundtrip(weight, act_weights=act_weights)
    print(f"fast path matches:  {np.array_equal(fast, restored)}")


if __name__ == "__main__":
    main()
