"""Walk one group of values through the hardware compressor and decompressor.

Shows the microarchitectural view of Section 4: the bitonic sorter's outputs,
the min/max pattern selector's fitness scores, the four parallel encoders'
lengths, the packed 64-byte block, and the speculative parallel decode with
its merge statistics — all bit-exact against the software codec.

Run with:  python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.core import calibrate_kv_meta
from repro.hardware import (
    EccoCostModel,
    HardwareCompressor,
    ParallelHuffmanDecoder,
    compressor_4x_pipeline,
    decompressor_4x_pipeline,
)


def main() -> None:
    rng = np.random.default_rng(3)

    # Calibrate the 16-pattern online library (what the driver preloads).
    calibration = rng.standard_normal((256, 128)) * np.exp(
        rng.normal(0, 1.0, size=(1, 128))
    )
    meta = calibrate_kv_meta(calibration)

    # One cache-line-pair worth of data: 128 FP16 values.
    group = (rng.standard_normal(128) * np.exp(rng.normal(0, 1.0, 128))).astype(
        np.float32
    )

    compressor = HardwareCompressor(meta)
    out = compressor.encode_group(group)
    block = out.block
    print("--- compressor (Fig. 9) ---")
    print(f"bitonic comparators fired: {out.comparators_used} "
          f"(network: 64 x 28 stages)")
    print(f"pattern fitness (16 entries, lower wins): "
          f"{np.array2string(out.pattern_fitness, precision=3)}")
    print(f"selected pattern:  KP{block.pattern_id}")
    print(f"encoder lengths:   {out.encoder_lengths} bits -> codebook "
          f"HF{block.codebook_id}")
    print(f"packed block:      {len(block.data)} bytes, "
          f"{block.padded_outliers} outliers padded, "
          f"{block.clipped_symbols} symbols clipped")

    decoder = ParallelHuffmanDecoder(meta)
    decoded = decoder.decode(block.data)
    print("\n--- decompressor (Fig. 8) ---")
    print(f"speculative sub-decodes:   {decoded.sub_decodes_performed} (64 x 8)")
    print(f"tree-merge operations:     {decoded.merge_operations} (6 stages)")
    print(f"symbols recovered:         {decoded.symbols_decoded} / 128")
    print(f"outliers applied:          {decoded.outliers_applied}")
    err = np.sqrt(np.mean((decoded.values - group) ** 2)) / np.std(group)
    print(f"relative RMS error:        {err:.4f}")

    print("\n--- pipeline and cost (Table 3, Section 5.2) ---")
    dec_pipe = decompressor_4x_pipeline()
    comp_pipe = compressor_4x_pipeline()
    print(f"decompressor: {dec_pipe.latency_cycles} cycles, "
          f"{dec_pipe.throughput_bytes_per_cycle:.0f} B/cycle across "
          f"{dec_pipe.instances} instances")
    print(f"compressor:   {comp_pipe.latency_cycles} cycles")
    cost = EccoCostModel()
    for component in cost.components():
        print(f"{component.name:<18} {component.area_mm2:>6.2f} mm2  "
              f"{component.power_w:>5.2f} W")
    print(f"total: {cost.total_area_mm2:.2f} mm2 "
          f"({cost.area_fraction_of_a100() * 100:.2f}% of the A100 die)")


if __name__ == "__main__":
    main()
